/// \file main.cpp
/// spmdlint CLI: file discovery, baseline matching, JSON report, and the
/// --expect mode the lint corpus test drives.
///
/// Exit status: 0 clean (or --expect matched), 1 active findings (or
/// --expect mismatched), 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "spmdlint.hpp"

namespace fs = std::filesystem;
using spmdlint::Finding;
using spmdlint::Rule;
using spmdlint::Status;

namespace {

struct Options {
  std::string root = ".";
  std::string baseline;  // empty: no baseline
  std::string json_out;
  std::string expect;  // corpus mode: compare against an expectation file
  bool list_rules = false;
  std::vector<std::string> paths;
};

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: spmdlint [--root DIR] [--baseline FILE | --no-baseline]\n"
      "                [--json FILE] [--expect FILE] [--list-rules]\n"
      "                PATH...\n"
      "\n"
      "Lints C++ sources (.cpp .cc .hpp .h) for SPMD barrier/collective\n"
      "discipline.  PATH arguments are files or directories (recursed),\n"
      "resolved and reported relative to --root.\n");
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// Path as reported in diagnostics: relative to root, '/'-separated.
std::string display_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") rel = p;
  return rel.generic_string();
}

struct BaselineEntry {
  Rule rule;
  std::string file;
  int line;
  std::string justification;
  bool used = false;
};

/// Baseline format, one entry per line:
///   <rule> <path>:<line> -- <justification>
/// `#` starts a comment; blank lines ignored.  The justification is
/// mandatory: a baselined finding without a written reason is a parse
/// error.
bool load_baseline(const std::string& path,
                   std::vector<BaselineEntry>* entries) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "spmdlint: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    std::string s = line;
    const std::size_t hash = s.find('#');
    if (hash == 0) continue;
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\r')) {
      s.pop_back();
    }
    if (s.empty()) continue;
    std::istringstream ss(s);
    std::string rule_name, loc;
    ss >> rule_name >> loc;
    BaselineEntry e;
    const std::size_t colon = loc.rfind(':');
    std::size_t sep = s.find(" -- ");
    if (!spmdlint::rule_from_name(rule_name, &e.rule) ||
        colon == std::string::npos || sep == std::string::npos ||
        sep + 4 >= s.size()) {
      std::fprintf(stderr,
                   "spmdlint: %s:%d: bad baseline entry (want `<rule> "
                   "<path>:<line> -- <justification>`): %s\n",
                   path.c_str(), lineno, s.c_str());
      ok = false;
      continue;
    }
    e.file = loc.substr(0, colon);
    e.line = std::atoi(loc.c_str() + colon + 1);
    e.justification = s.substr(sep + 4);
    entries->push_back(std::move(e));
  }
  return ok;
}

void json_escape(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kActive: return "active";
    case Status::kSuppressed: return "suppressed";
    case Status::kBaselined: return "baselined";
  }
  return "?";
}

bool write_json(const std::string& path, const std::string& root,
                const std::vector<Finding>& findings) {
  std::string out = "{\n  \"schema_version\": 1,\n  \"tool\": \"spmdlint\",\n";
  out += "  \"root\": \"";
  json_escape(&out, root);
  out += "\",\n  \"findings\": [";
  std::map<std::string, int> counts;
  bool first = true;
  for (const Finding& f : findings) {
    counts[status_name(f.status)]++;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": \"";
    out += spmdlint::rule_name(f.rule);
    out += "\", \"severity\": \"";
    out += spmdlint::severity(f.rule);
    out += "\", \"file\": \"";
    json_escape(&out, f.file);
    out += "\", \"line\": " + std::to_string(f.line);
    out += ", \"status\": \"";
    out += status_name(f.status);
    out += "\", \"message\": \"";
    json_escape(&out, f.message);
    out += "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"counts\": {\"active\": " + std::to_string(counts["active"]) +
         ", \"suppressed\": " + std::to_string(counts["suppressed"]) +
         ", \"baselined\": " + std::to_string(counts["baselined"]) + "}\n}\n";
  std::ofstream o(path);
  if (!o) {
    std::fprintf(stderr, "spmdlint: cannot write %s\n", path.c_str());
    return false;
  }
  o << out;
  return true;
}

/// Expectation file for the corpus test: `<rule> <path>:<line>` per line,
/// `#` comments.  Compared against the ACTIVE findings only, so the corpus
/// also pins that suppressed findings are really suppressed.
int run_expect(const std::string& path, const std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "spmdlint: cannot read %s\n", path.c_str());
    return 2;
  }
  std::multiset<std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    expected.insert(line);
  }
  std::multiset<std::string> actual;
  for (const Finding& f : findings) {
    if (f.status != Status::kActive) continue;
    actual.insert(std::string(spmdlint::rule_name(f.rule)) + " " + f.file +
                  ":" + std::to_string(f.line));
  }
  std::vector<std::string> missing, unexpected;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(unexpected));
  if (missing.empty() && unexpected.empty()) {
    std::printf("spmdlint: expectation match: %zu finding(s)\n",
                actual.size());
    return 0;
  }
  for (const std::string& m : missing) {
    std::fprintf(stderr, "spmdlint: MISSING expected finding: %s\n",
                 m.c_str());
  }
  for (const std::string& u : unexpected) {
    std::fprintf(stderr, "spmdlint: UNEXPECTED finding: %s\n", u.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool no_baseline = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "spmdlint: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (a == "--list-rules") {
      opt.list_rules = true;
    } else if (a == "--root") {
      const std::string* v = value("--root");
      if (!v) return 2;
      opt.root = *v;
    } else if (a == "--baseline") {
      const std::string* v = value("--baseline");
      if (!v) return 2;
      opt.baseline = *v;
    } else if (a == "--no-baseline") {
      no_baseline = true;
    } else if (a == "--json") {
      const std::string* v = value("--json");
      if (!v) return 2;
      opt.json_out = *v;
    } else if (a == "--expect") {
      const std::string* v = value("--expect");
      if (!v) return 2;
      opt.expect = *v;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "spmdlint: unknown option %s\n", a.c_str());
      usage(stderr);
      return 2;
    } else {
      opt.paths.push_back(a);
    }
  }
  if (no_baseline) opt.baseline.clear();

  if (opt.list_rules) {
    for (std::size_t i = 0; i < spmdlint::kNumRules; ++i) {
      const Rule r = static_cast<Rule>(i);
      std::printf("%-20s %-8s %s\n", spmdlint::rule_name(r),
                  spmdlint::severity(r), spmdlint::rule_doc(r));
    }
    if (opt.paths.empty()) return 0;
  }
  if (opt.paths.empty()) {
    usage(stderr);
    return 2;
  }

  const fs::path root = fs::absolute(opt.root);

  // Discover files.
  std::vector<fs::path> files;
  for (const std::string& p : opt.paths) {
    fs::path path = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "spmdlint: no such file or directory: %s\n",
                   p.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Lint.
  std::vector<Finding> findings;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spmdlint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const spmdlint::LexedFile lexed =
        spmdlint::lex(display_path(f, root), content.str());
    spmdlint::analyze(lexed, &findings);
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& x, const Finding& y) {
                     if (x.file != y.file) return x.file < y.file;
                     return x.line < y.line;
                   });

  // Baseline.
  std::vector<BaselineEntry> baseline;
  if (!opt.baseline.empty()) {
    if (!load_baseline(opt.baseline, &baseline)) return 2;
    for (Finding& f : findings) {
      if (f.status != Status::kActive) continue;
      for (BaselineEntry& e : baseline) {
        if (!e.used && e.rule == f.rule && e.file == f.file &&
            e.line == f.line) {
          f.status = Status::kBaselined;
          e.used = true;
          break;
        }
      }
    }
  }

  if (!opt.json_out.empty() &&
      !write_json(opt.json_out, root.string(), findings)) {
    return 2;
  }

  if (!opt.expect.empty()) return run_expect(opt.expect, findings);

  // Human report.
  int active = 0, suppressed = 0, baselined = 0;
  for (const Finding& f : findings) {
    switch (f.status) {
      case Status::kSuppressed: ++suppressed; continue;
      case Status::kBaselined: ++baselined; continue;
      case Status::kActive: break;
    }
    ++active;
    std::printf("%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                spmdlint::severity(f.rule), spmdlint::rule_name(f.rule),
                f.message.c_str());
  }
  for (const BaselineEntry& e : baseline) {
    if (!e.used) {
      std::printf(
          "note: stale baseline entry (finding no longer fires, remove it): "
          "%s %s:%d\n",
          spmdlint::rule_name(e.rule), e.file.c_str(), e.line);
    }
  }
  std::printf(
      "spmdlint: %zu file(s), %d active, %d suppressed, %d baselined\n",
      files.size(), active, suppressed, baselined);
  return active == 0 ? 0 : 1;
}
