// bench_diff: compare two BENCH_*.json reports (bench/bench_util.hpp
// JsonReport, schema v3) and fail on perf regressions.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold PCT] [--key FIELD]
//              [--allow-missing]
//
// Records are matched by their `name` field.  A record regresses when
// CURRENT's FIELD (default min_ns — the best-of-reps number, least noisy
// on shared CI hosts) exceeds BASELINE's by more than PCT percent
// (default 10).  A record present in BASELINE but absent from CURRENT is
// an error unless --allow-missing (a renamed bench must update its
// baseline deliberately); records new in CURRENT are reported but never
// fail.  Exit codes: 0 clean, 1 regression/missing, 2 usage or I/O or
// parse error.
//
// The parser below is deliberately minimal and dependency-free: it
// understands exactly the flat shape JsonReport writes (one object per
// result, string and number values, no nesting inside results) and
// rejects anything else rather than guessing.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Record {
  std::string name;
  std::map<std::string, double> fields;
};

struct Report {
  std::string bench;
  int schema_version = 0;
  std::string git_sha;
  std::string build_preset;
  std::vector<Record> results;
};

/// Cursor over the raw JSON text.
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }
};

std::optional<std::string> parse_string(Cursor& c) {
  if (!c.eat('"')) return std::nullopt;
  std::string out;
  while (c.pos < c.text.size() && c.text[c.pos] != '"') {
    if (c.text[c.pos] == '\\' && c.pos + 1 < c.text.size()) ++c.pos;
    out += c.text[c.pos++];
  }
  if (c.pos >= c.text.size()) return std::nullopt;
  ++c.pos;  // closing quote
  return out;
}

std::optional<double> parse_number(Cursor& c) {
  c.skip_ws();
  const char* begin = c.text.c_str() + c.pos;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  c.pos += static_cast<std::size_t>(end - begin);
  return value;
}

/// One `{"name": ..., "p": ..., ...}` result object.
std::optional<Record> parse_record(Cursor& c) {
  if (!c.eat('{')) return std::nullopt;
  Record record;
  while (true) {
    auto key = parse_string(c);
    if (!key || !c.eat(':')) return std::nullopt;
    if (c.peek() == '"') {
      auto value = parse_string(c);
      if (!value) return std::nullopt;
      if (*key == "name") record.name = *value;
    } else {
      auto value = parse_number(c);
      if (!value) return std::nullopt;
      record.fields[*key] = *value;
    }
    if (c.eat(',')) continue;
    if (c.eat('}')) break;
    return std::nullopt;
  }
  return record;
}

std::optional<Report> parse_report(const std::string& text,
                                   std::string* error) {
  Cursor c{text};
  Report report;
  if (!c.eat('{')) {
    *error = "expected top-level object";
    return std::nullopt;
  }
  while (true) {
    auto key = parse_string(c);
    if (!key || !c.eat(':')) {
      *error = "malformed key";
      return std::nullopt;
    }
    if (*key == "results") {
      if (!c.eat('[')) {
        *error = "`results` is not an array";
        return std::nullopt;
      }
      if (!c.eat(']')) {
        while (true) {
          auto record = parse_record(c);
          if (!record || record->name.empty()) {
            *error = "malformed result record (or record without a name)";
            return std::nullopt;
          }
          report.results.push_back(std::move(*record));
          if (c.eat(',')) continue;
          if (c.eat(']')) break;
          *error = "unterminated results array";
          return std::nullopt;
        }
      }
    } else if (c.peek() == '"') {
      auto value = parse_string(c);
      if (!value) {
        *error = "malformed string value";
        return std::nullopt;
      }
      if (*key == "bench") report.bench = *value;
      if (*key == "git_sha") report.git_sha = *value;
      if (*key == "build_preset") report.build_preset = *value;
    } else {
      auto value = parse_number(c);
      if (!value) {
        *error = "malformed numeric value";
        return std::nullopt;
      }
      if (*key == "schema_version") {
        report.schema_version = static_cast<int>(*value);
      }
    }
    if (c.eat(',')) continue;
    if (c.eat('}')) break;
    *error = "unterminated top-level object";
    return std::nullopt;
  }
  return report;
}

std::optional<Report> load(const char* path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = std::string("cannot open ") + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  auto report = parse_report(text, error);
  if (!report) {
    *error = std::string(path) + ": " + *error;
    return std::nullopt;
  }
  return report;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--threshold PCT] "
               "[--key FIELD] [--allow-missing]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double threshold_pct = 10.0;
  std::string key = "min_ns";
  bool allow_missing = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--threshold" && a + 1 < argc) {
      char* end = nullptr;
      threshold_pct = std::strtod(argv[++a], &end);
      if (end == argv[a] || *end != '\0' || threshold_pct < 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--key" && a + 1 < argc) {
      key = argv[++a];
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (baseline_path == nullptr) {
      baseline_path = argv[a];
    } else if (current_path == nullptr) {
      current_path = argv[a];
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    return usage(argv[0]);
  }

  std::string error;
  const auto baseline = load(baseline_path, &error);
  if (!baseline) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }
  const auto current = load(current_path, &error);
  if (!current) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }
  if (baseline->bench != current->bench) {
    std::fprintf(stderr,
                 "bench_diff: comparing different benches (`%s` vs `%s`)\n",
                 baseline->bench.c_str(), current->bench.c_str());
    return 2;
  }
  // Unknown provenance makes a delta unattributable (which flags, which
  // optimization level?).  Warn here; committed baselines are held to a
  // harder line by tools/check.sh bench-diff, which fails on it.
  const auto warn_provenance = [](const char* which, const char* path,
                                  const Report& report) {
    if (report.build_preset.empty() || report.build_preset == "unknown") {
      std::fprintf(stderr,
                   "bench_diff: warning: %s %s has build_preset \"%s\" — "
                   "numbers are not attributable to a build configuration "
                   "(re-run the bench from a CMake preset build)\n",
                   which, path,
                   report.build_preset.empty() ? "(missing)"
                                               : report.build_preset.c_str());
    }
  };
  warn_provenance("baseline", baseline_path, *baseline);
  warn_provenance("current", current_path, *current);

  std::map<std::string, const Record*> current_by_name;
  for (const Record& r : current->results) current_by_name[r.name] = &r;

  std::printf("bench_diff: %s  (%s @%s -> @%s, key %s, threshold +%.1f%%)\n",
              baseline->bench.c_str(), baseline_path,
              baseline->git_sha.c_str(), current->git_sha.c_str(),
              key.c_str(), threshold_pct);
  std::printf("%-34s %14s %14s %9s\n", "name", "baseline", "current",
              "delta");

  int regressions = 0;
  int missing = 0;
  for (const Record& base : baseline->results) {
    const auto it = current_by_name.find(base.name);
    if (it == current_by_name.end()) {
      std::printf("%-34s %14s %14s %9s\n", base.name.c_str(), "-", "MISSING",
                  "-");
      ++missing;
      continue;
    }
    const auto base_field = base.fields.find(key);
    const auto cur_field = it->second->fields.find(key);
    if (base_field == base.fields.end() ||
        cur_field == it->second->fields.end()) {
      std::printf("%-34s %14s %14s %9s\n", base.name.c_str(), "-", "-",
                  "no-key");
      continue;
    }
    const double b = base_field->second;
    const double c = cur_field->second;
    const double delta_pct = b > 0 ? (c / b - 1.0) * 100.0 : 0.0;
    const bool regressed = b > 0 && delta_pct > threshold_pct;
    std::printf("%-34s %14.1f %14.1f %+8.1f%%%s\n", base.name.c_str(), b, c,
                delta_pct, regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  for (const Record& r : current->results) {
    bool known = false;
    for (const Record& base : baseline->results) {
      if (base.name == r.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::printf("%-34s %14s %14s %9s\n", r.name.c_str(), "NEW", "-", "-");
    }
  }

  if (missing > 0 && !allow_missing) {
    std::printf("bench_diff: %d baseline record(s) missing from current "
                "(rename baselines deliberately or pass --allow-missing)\n",
                missing);
    return 1;
  }
  if (regressions > 0) {
    std::printf("bench_diff: %d regression(s) beyond +%.1f%%\n", regressions,
                threshold_pct);
    return 1;
  }
  std::printf("bench_diff: ok (%zu record(s) compared)\n",
              baseline->results.size());
  return 0;
}
