#!/usr/bin/env bash
# Correctness matrix driver: builds and tests the tier-1 suite under each
# analysis configuration, runs the spmdlint static pass, and (when
# available) runs clang-tidy over the sources using the plain preset's
# compile_commands.json.
#
# Usage:
#   tools/check.sh                     # run every stage
#   tools/check.sh plain tsan          # run a subset
#   tools/check.sh lint-spmd           # just the static SPMD lint
#   JOBS=8 tools/check.sh              # override parallelism
#   SPMDLINT_NO_BASELINE=1 tools/check.sh lint-spmd   # report ALL findings
#
# Stages: plain, asan-ubsan, tsan, race-ledger, trace, bench-diff,
# lint-spmd, tidy.
# Exit status is non-zero iff any requested stage fails; a stage that
# cannot run here (clang-tidy not installed) is recorded as SKIP, which
# does not fail the script.  A per-stage PASS/FAIL/SKIP table is printed
# at the end regardless of where a failure occurred.
#
# Test labels: the plain/asan-ubsan/tsan ctest presets exclude tests
# labelled `slow` (the differential conformance and schedule-stress
# layers) to keep feedback fast; the race-ledger preset runs everything.
# Select manually with `ctest -L ledger` / `ctest -L lint` / `ctest -LE
# slow` in any build tree (labels are regexes: the compound `slow-ledger`
# matches both).
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(plain asan-ubsan tsan race-ledger trace bench-diff lint-spmd tidy)
fi

# Per-stage results, aggregated into the summary table and the exit code.
# Bash 3 compatible: parallel arrays instead of an associative array.
RESULT_NAMES=()
RESULT_CODES=()  # PASS | FAIL | SKIP
RESULT_WHY=()

note() { printf '\n==== %s ====\n' "$*"; }
record() {  # record <stage> <PASS|FAIL|SKIP> [why]
  RESULT_NAMES+=("$1")
  RESULT_CODES+=("$2")
  RESULT_WHY+=("${3:-}")
}

run_preset() {
  local preset="$1"
  note "preset: ${preset} (configure)"
  cmake --preset "${preset}" ||
    { record "${preset}" FAIL "configure"; return; }
  note "preset: ${preset} (build, -j${JOBS})"
  cmake --build --preset "${preset}" -j "${JOBS}" ||
    { record "${preset}" FAIL "build"; return; }
  note "preset: ${preset} (ctest)"
  ctest --preset "${preset}" -j "${JOBS}" ||
    { record "${preset}" FAIL "test"; return; }
  record "${preset}" PASS
}

# Tracing subsystem (src/trace, docs/tracing.md): runs the trace-labelled
# tier in the plain build, then produces a real trace.json from bench_host
# and schema-checks it by loading it back (python3 when available, else a
# structural grep).
run_trace() {
  note "trace: building plain preset"
  cmake --preset plain >/dev/null || { record trace FAIL "configure"; return; }
  cmake --build --preset plain -j "${JOBS}" --target test_trace bench_host ||
    { record trace FAIL "build"; return; }
  note "trace: ctest -L trace"
  ctest --test-dir build -L trace -j "${JOBS}" --output-on-failure ||
    { record trace FAIL "test"; return; }
  note "trace: bench_host --trace smoke (p=4, traced end to end)"
  (cd build && bench/bench_host --trace trace_smoke.json 4) ||
    { record trace FAIL "bench --trace"; return; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; d=json.load(open(sys.argv[1]));
assert d["traceEvents"], "no trace events"' build/trace_smoke.json ||
      { record trace FAIL "trace.json invalid"; return; }
  else
    grep -q '"traceEvents"' build/trace_smoke.json ||
      { record trace FAIL "trace.json invalid"; return; }
  fi
  record trace PASS
}

# Bench regression gate (tools/bench_diff): fixture tests plus a self-diff
# of the committed BENCH_*.json baselines (exercises the parser on real
# reports; threshold 0 because a file always equals itself).
run_bench_diff() {
  # Committed baselines must carry real provenance: a "build_preset":
  # "unknown" baseline makes every future delta unattributable.  Refresh
  # the file from a preset build (cmake --preset plain) before committing.
  note "bench-diff: committed baseline provenance"
  local f
  for f in BENCH_host.json BENCH_pipeline.json; do
    if grep -q '"build_preset": *"unknown"' "${f}"; then
      echo "committed ${f} has build_preset \"unknown\" — refresh it from" \
           "a preset build" >&2
      record bench-diff FAIL "unknown provenance in ${f}"
      return
    fi
  done
  note "bench-diff: building plain preset"
  cmake --preset plain >/dev/null ||
    { record bench-diff FAIL "configure"; return; }
  cmake --build --preset plain -j "${JOBS}" --target bench_diff ||
    { record bench-diff FAIL "build"; return; }
  note "bench-diff: fixture + self-diff tests"
  ctest --test-dir build -L bench_diff -j "${JOBS}" --output-on-failure ||
    { record bench-diff FAIL "test"; return; }
  record bench-diff PASS
}

# Static SPMD discipline lint (tools/spmdlint, docs/spmdlint.md).  Builds
# the analyzer directly with the host compiler into build-lint/ so the
# stage works without any CMake configure step, then lints src/ and
# examples/ against the checked-in baseline.  Set SPMDLINT_NO_BASELINE=1
# to see every finding including baselined ones (the nightly CI mode).
run_lint_spmd() {
  local cxx="${CXX:-}"
  if [ -z "${cxx}" ]; then
    if command -v g++ >/dev/null 2>&1; then cxx=g++;
    elif command -v clang++ >/dev/null 2>&1; then cxx=clang++;
    else
      note "lint-spmd: no C++ compiler found; skipping"
      record lint-spmd SKIP "no compiler"
      return
    fi
  fi
  note "lint-spmd: building analyzer (${cxx})"
  mkdir -p build-lint
  "${cxx}" -std=c++17 -O2 -Wall -Wextra -o build-lint/spmdlint \
    tools/spmdlint/lexer.cpp tools/spmdlint/rules.cpp \
    tools/spmdlint/main.cpp ||
    { record lint-spmd FAIL "build"; return; }
  local baseline_args=(--baseline tools/spmdlint/baseline.txt)
  if [ "${SPMDLINT_NO_BASELINE:-0}" != 0 ]; then
    baseline_args=(--no-baseline)
  fi
  note "lint-spmd: linting src/ examples/ (${baseline_args[*]})"
  build-lint/spmdlint --root . "${baseline_args[@]}" \
    --json build-lint/spmdlint.json src examples ||
    { record lint-spmd FAIL "findings"; return; }
  note "lint-spmd: corpus self-test"
  build-lint/spmdlint --root tests/lint_corpus --no-baseline \
    --expect tests/lint_corpus/expected.txt . ||
    { record lint-spmd FAIL "corpus"; return; }
  record lint-spmd PASS
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    note "clang-tidy not installed; skipping (see ROADMAP.md open items)"
    record tidy SKIP "clang-tidy not installed"
    return
  fi
  # clang-tidy needs the plain preset's compile_commands.json.
  if [ ! -f build/compile_commands.json ]; then
    cmake --preset plain || { record tidy FAIL "configure"; return; }
  fi
  note "clang-tidy ($(clang-tidy --version | head -n1))"
  local files
  files=$(git ls-files 'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp')
  local runner="xargs -P ${JOBS} -n 4"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet -j "${JOBS}" \
      'src/.*\.cpp$|tests/.*\.cpp$|bench/.*\.cpp$' ||
      { record tidy FAIL "lint"; return; }
  else
    echo "${files}" | ${runner} clang-tidy -p build --quiet ||
      { record tidy FAIL "lint"; return; }
  fi
  record tidy PASS
}

for stage in "${STAGES[@]}"; do
  case "${stage}" in
    plain | asan-ubsan | tsan | race-ledger) run_preset "${stage}" ;;
    trace) run_trace ;;
    bench-diff) run_bench_diff ;;
    lint-spmd) run_lint_spmd ;;
    tidy) run_tidy ;;
    *)
      echo "unknown stage: ${stage}" >&2
      record "${stage}" FAIL "unknown stage"
      ;;
  esac
done

note "summary"
status=0
printf '%-14s %-6s %s\n' "stage" "result" "detail"
printf '%-14s %-6s %s\n' "-----" "------" "------"
for i in "${!RESULT_NAMES[@]}"; do
  printf '%-14s %-6s %s\n' "${RESULT_NAMES[$i]}" "${RESULT_CODES[$i]}" \
    "${RESULT_WHY[$i]}"
  if [ "${RESULT_CODES[$i]}" = FAIL ]; then status=1; fi
done
if [ "${status}" -ne 0 ]; then
  echo
  echo "FAILED: at least one stage failed (see table above)" >&2
fi
exit "${status}"
