#!/usr/bin/env bash
# Correctness matrix driver: builds and tests the tier-1 suite under each
# analysis configuration, then (when available) runs clang-tidy over the
# sources using the plain preset's compile_commands.json.
#
# Usage:
#   tools/check.sh                 # run every stage
#   tools/check.sh plain tsan      # run a subset
#   JOBS=8 tools/check.sh          # override parallelism
#
# Stages: plain, asan-ubsan, tsan, race-ledger, tidy.
# Exit status is non-zero if any requested stage fails; stages that
# cannot run here (clang-tidy not installed) are skipped with a notice.
#
# Test labels: the plain/asan-ubsan/tsan ctest presets exclude tests
# labelled `slow` (the differential conformance and schedule-stress
# layers) to keep feedback fast; the race-ledger preset runs everything.
# Select manually with `ctest -L ledger` / `ctest -LE slow` in any build
# tree (labels are regexes: the compound `slow-ledger` matches both).
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(plain asan-ubsan tsan race-ledger tidy)
fi

failures=()
note() { printf '\n==== %s ====\n' "$*"; }

run_preset() {
  local preset="$1"
  note "preset: ${preset} (configure)"
  cmake --preset "${preset}" || { failures+=("${preset}:configure"); return; }
  note "preset: ${preset} (build, -j${JOBS})"
  cmake --build --preset "${preset}" -j "${JOBS}" ||
    { failures+=("${preset}:build"); return; }
  note "preset: ${preset} (ctest)"
  ctest --preset "${preset}" -j "${JOBS}" || failures+=("${preset}:test")
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    note "clang-tidy not installed; skipping (see ROADMAP.md open items)"
    return
  fi
  # clang-tidy needs the plain preset's compile_commands.json.
  if [ ! -f build/compile_commands.json ]; then
    cmake --preset plain || { failures+=("tidy:configure"); return; }
  fi
  note "clang-tidy ($(clang-tidy --version | head -n1))"
  local files
  files=$(git ls-files 'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp')
  local runner="xargs -P ${JOBS} -n 4"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet -j "${JOBS}" \
      'src/.*\.cpp$|tests/.*\.cpp$|bench/.*\.cpp$' ||
      failures+=("tidy:lint")
  else
    echo "${files}" | ${runner} clang-tidy -p build --quiet ||
      failures+=("tidy:lint")
  fi
}

for stage in "${STAGES[@]}"; do
  case "${stage}" in
    plain | asan-ubsan | tsan | race-ledger) run_preset "${stage}" ;;
    tidy) run_tidy ;;
    *)
      echo "unknown stage: ${stage}" >&2
      failures+=("${stage}:unknown")
      ;;
  esac
done

note "summary"
if [ ${#failures[@]} -eq 0 ]; then
  echo "all requested stages passed: ${STAGES[*]}"
else
  echo "FAILED stages: ${failures[*]}" >&2
  exit 1
fi
